// TPC-H query answering on the mini-Flink batch engine (§5.3): runs one of
// the QA–QE queries under both Flink's built-in schema-specialized
// serializers and Skyway, printing the breakdown side by side.
package main

import (
	"flag"
	"fmt"
	"log"

	"skyway/internal/batch"
	"skyway/internal/datagen"
	"skyway/internal/klass"
)

func main() {
	query := flag.String("query", "QC", "query to run (QA..QE, or 'all')")
	sf := flag.Float64("sf", 0.5, "TPC-H scale factor (1.0 ≈ 60k lineitems)")
	workers := flag.Int("workers", 3, "task manager count")
	flag.Parse()

	var queries []batch.Query
	if *query == "all" {
		queries = batch.AllQueries()
	} else {
		queries = []batch.Query{batch.Query(*query)}
	}

	gen := datagen.GenTPCH(*sf, 2024)
	fmt.Printf("dataset: sf=%.2f — %d lineitems, %d orders, %d customers\n\n",
		*sf, len(gen.LineItems), len(gen.Orders), len(gen.Customers))

	modes := []struct {
		name    string
		factory batch.CodecFactory
	}{
		{"flink-builtin", batch.BuiltinFactory()},
		{"skyway", batch.SkywayFactory()},
	}

	for _, q := range queries {
		fmt.Printf("%s: %s\n", q, batch.Describe(q))
		for _, m := range modes {
			cp := klass.NewPath()
			batch.TPCHClasses(cp)
			c, err := batch.NewCluster(cp, batch.Config{Workers: *workers}, m.factory)
			if err != nil {
				log.Fatal(err)
			}
			db, err := batch.Load(c, gen)
			if err != nil {
				log.Fatal(err)
			}
			bd, digest, err := batch.Run(c, q, db)
			if err != nil {
				log.Fatalf("%s/%s: %v", m.name, q, err)
			}
			fmt.Printf("  %-14s %s\n                 result digest %.2f\n", m.name, bd, digest)
			db.Free()
		}
		fmt.Println()
	}
}
