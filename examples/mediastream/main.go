// Mediastream: two "nodes" in one process connected by real TCP sockets on
// loopback — a JSBS-style media-content feed streamed heap-to-heap. The
// driver registry is also served over TCP, so this is the full Algorithm 1
// + Algorithm 2 wire deployment in miniature.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"skyway"
	"skyway/internal/datagen"
	"skyway/internal/klass"
)

func main() {
	n := flag.Int("n", 2000, "media records to stream")
	flag.Parse()

	cp := klass.NewPath()
	datagen.MediaClasses(cp)

	// Driver registry over TCP (Algorithm 1's daemon thread).
	reg := skyway.NewInProcRegistry()
	regLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	regSrv := skyway.ServeRegistry(reg, regLn)
	defer regSrv.Close()

	// Worker runtimes dial the registry like remote JVMs would.
	dial := func(name string) *skyway.Runtime {
		client, err := skyway.DialRegistry(regLn.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		rt, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: name, Registry: client})
		if err != nil {
			log.Fatal(err)
		}
		return rt
	}
	sender := dial("media-producer")
	receiver := dial("media-consumer")

	// Data socket between the nodes.
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dataLn.Close()

	done := make(chan int64, 1)
	go func() { // consumer node
		conn, err := dataLn.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		r := skyway.NewReader(receiver, conn)
		mck := receiver.MustLoad(datagen.MediaContentClass)
		mk := receiver.MustLoad(datagen.MediaClass)
		var totalSize int64
		for {
			mc, err := r.ReadObject()
			if err != nil {
				break // EOF ends the stream
			}
			media := receiver.GetRef(mc, mck.FieldByName("media"))
			totalSize += receiver.GetLong(media, mk.FieldByName("size"))
		}
		done <- totalSize
	}()

	conn, err := net.Dial("tcp", dataLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	gen := datagen.NewMediaGen(sender, 1)
	svc := skyway.NewService(sender)
	w := svc.NewWriter(conn)

	start := time.Now()
	var sentSize int64
	mck := sender.MustLoad(datagen.MediaContentClass)
	mk := sender.MustLoad(datagen.MediaClass)
	for i := 0; i < *n; i++ {
		mc, err := gen.One(i)
		if err != nil {
			log.Fatal(err)
		}
		h := sender.Pin(mc)
		media := sender.GetRef(h.Addr(), mck.FieldByName("media"))
		sentSize += sender.GetLong(media, mk.FieldByName("size"))
		if err := w.WriteObject(h.Addr()); err != nil {
			log.Fatal(err)
		}
		h.Release()
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	conn.Close()
	elapsed := time.Since(start)

	gotSize := <-done
	fmt.Printf("streamed %d media graphs (%d objects, %d wire bytes) in %v over TCP\n",
		*n, w.Objects, w.Bytes, elapsed.Round(time.Millisecond))
	fmt.Printf("checksum: sender media bytes %d, receiver media bytes %d, match=%v\n",
		sentSize, gotSize, sentSize == gotSize)
	lookups, _ := receiver.View.RemoteLookups()
	fmt.Printf("registry: receiver resolved %d classes with %d remote LOOKUPs\n",
		receiver.ClassesLoaded, lookups)
}
