// PageRank on the mini-Spark engine, comparing serializers: the Java
// serializer, Kryo with manual registration, and Skyway. Prints the §2.2
// style breakdown per serializer — the motivating workload of the paper's
// Spark evaluation scaled to a laptop.
package main

import (
	"flag"
	"fmt"
	"log"

	"skyway/internal/dataflow"
	"skyway/internal/datagen"
	"skyway/internal/klass"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

func main() {
	scale := flag.Float64("scale", 0.2, "graph scale (1.0 = 1/100 of the paper's LiveJournal)")
	iters := flag.Int("iters", 3, "PageRank iterations")
	workers := flag.Int("workers", 3, "executor count")
	parallel := flag.Int("parallel", 0, "concurrent executor tasks (0/1 = sequential, -1 = one per worker)")
	flag.Parse()

	spec, err := datagen.GraphByName("LiveJournal", *scale)
	if err != nil {
		log.Fatal(err)
	}
	g := spec.Generate()
	fmt.Printf("graph: %s-shaped, |V|=%d |E|=%d maxdeg=%d\n\n", spec.Name, g.N, g.M, g.MaxDegree())

	codecs := []struct {
		name string
		mk   func(c *dataflow.Cluster) serial.Codec
	}{
		{"java", func(*dataflow.Cluster) serial.Codec { return serial.JavaCodec() }},
		{"kryo", func(*dataflow.Cluster) serial.Codec { return serial.KryoCodec(dataflow.WorkloadRegistration()) }},
		{"skyway", func(c *dataflow.Cluster) serial.Codec {
			rts := make([]*vm.Runtime, 0, len(c.Execs))
			for _, ex := range c.Execs {
				rts = append(rts, ex.RT)
			}
			return serial.NewSkywayCodec(rts...)
		}},
	}

	for _, entry := range codecs {
		cp := klass.NewPath()
		dataflow.WorkloadClasses(cp)
		c, err := dataflow.NewCluster(cp, dataflow.Config{Workers: *workers, ParallelTasks: *parallel}, nil)
		if err != nil {
			log.Fatal(err)
		}
		c.Codec = entry.mk(c)
		bd, mass, err := dataflow.RunPageRank(c, g, *iters)
		if err != nil {
			log.Fatalf("%s: %v", entry.name, err)
		}
		fmt.Printf("%-8s %s\n", entry.name, bd)
		fmt.Printf("         rank mass %.2f, S/D share of total: %.1f%%\n\n", mass, bd.SDShare()*100)
	}
}
