# Development entry points. `make check` is the pre-PR gate.

GO ?= go

.PHONY: build test vet skywayvet vet-taint sarif lint-fixtures race race-parallel verify chaos cluster-test arena-test fuzz-smoke check check-parallel bench-json bench-cmp speed-json speed-cmp

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

skywayvet:
	$(GO) run ./cmd/skywayvet ./...

# Just the dataflow analyzers — the slow interprocedural pair — for the
# dedicated CI job and for quick local iteration on decode-path changes.
vet-taint:
	$(GO) run ./cmd/skywayvet -analyzers wiretaint,atomicmix ./...

# Full suite as SARIF 2.1.0, for code-scanning upload.
sarif:
	$(GO) run ./cmd/skywayvet -sarif ./... > skywayvet.sarif || true

# Run each analyzer against its testdata fixture package standalone: the
# fixture `// want` expectations are the analyzers' behavioural contract.
lint-fixtures:
	$(GO) test -run 'Test.*Fixture' ./internal/analyzers/

race:
	$(GO) test -race ./...

# Race tests with every dataflow cluster forced onto the concurrent
# task path (per-executor goroutines, concurrent Skyway senders).
race-parallel:
	SKYWAY_PARALLEL=4 $(GO) test -race ./...

# Full test suite with the heap/buffer invariant verifier enabled.
verify:
	SKYWAY_VERIFY=1 $(GO) test ./...

# Chaos suite under the race detector: the failpoint matrix
# (internal/fault), the shuffle degradation-ladder tests, and the registry
# replay/drop/delay tests, with the heap invariant verifier armed.
chaos:
	SKYWAY_VERIFY=1 $(GO) test -race -run 'Chaos|Fault|Torn|TaskDie|FetchSlow|Exchange|Dial' \
		./internal/fault/ ./internal/dataflow/ ./internal/registry/ ./internal/core/

# Real multi-process cluster over loopback TCP: the test binary is the
# driver (registry daemon included) and spawns executor block-server
# processes via its re-exec trampoline; every shuffle block crosses real
# sockets twice. Includes the transport conformance suite and the TCP
# chaos matrix.
cluster-test:
	$(GO) test -race -run 'TestClusterWordCountOverTCPProcesses|TestTCPChaosMatrix|TestConformance|TestTornStream|TestSlowPeer|TestDialFailpoint|TestPooled' \
		./internal/dataflow/ ./internal/transport/ ./internal/transport/tcp/

# The arena suite: lazy-decode equivalence (eager vs. arena bit-identity,
# promotion-heavy variants), handle bounds/lifecycle unit tests, the
# steady-state allocation and full-GC-scan-independence gates, the arena
# chaos matrix, and a full SKYWAY_ARENA=1 sweep of the core and dataflow
# packages under the race detector with the heap verifier armed.
arena-test:
	SKYWAY_VERIFY=1 $(GO) test -race ./internal/arena/ ./internal/transport/
	SKYWAY_VERIFY=1 $(GO) test -race -run 'Arena' ./internal/heap/ ./internal/core/ ./internal/fault/
	SKYWAY_ARENA=1 SKYWAY_VERIFY=1 $(GO) test -race ./internal/core/ ./internal/serial/ ./internal/dataflow/

# Native fuzzing, smoke duration per target (override FUZZTIME for a soak).
FUZZTIME ?= 30s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReaderDecode -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzArenaHandle -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzTupleCodec -fuzztime $(FUZZTIME) ./internal/batch/
	$(GO) test -run '^$$' -fuzz FuzzBaddrRoundTrip -fuzztime $(FUZZTIME) ./internal/heap/

# Benchmark trajectory: regenerate BENCH_spark.json / BENCH_flink.json at the
# canonical smoke scale. Override BENCH_SCALE / BENCH_SF for bigger runs and
# BENCH_DIR to write somewhere other than the repo root.
BENCH_SCALE ?= 0.05
BENCH_SF    ?= 0.25
BENCH_DIR   ?= .

bench-json:
	mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/sparkbench -scale $(BENCH_SCALE) -bench-json $(BENCH_DIR)/BENCH_spark.json
	$(GO) run ./cmd/flinkbench -sf $(BENCH_SF) -bench-json $(BENCH_DIR)/BENCH_flink.json

# Compare a freshly generated trajectory against the checked-in baselines.
bench-cmp:
	$(GO) run ./cmd/benchcmp -tol 0.20 BENCH_spark.json $(BENCH_DIR)/BENCH_spark.json
	$(GO) run ./cmd/benchcmp -tol 0.20 BENCH_flink.json $(BENCH_DIR)/BENCH_flink.json

# Raw encode/decode throughput against the memcpy ceiling (cmd/speedbench):
# regenerate BENCH_speed.json, and gate it the same way as the trajectory
# files (best-pass time per workload may not regress past +20%).
speed-json:
	mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/speedbench -bench-json $(BENCH_DIR)/BENCH_speed.json

speed-cmp:
	$(GO) run ./cmd/benchcmp -tol 0.20 BENCH_speed.json $(BENCH_DIR)/BENCH_speed.json

check: build vet skywayvet race

check-parallel: build vet skywayvet race-parallel
