# Development entry points. `make check` is the pre-PR gate.

GO ?= go

.PHONY: build test vet skywayvet lint-fixtures race race-parallel verify check check-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

skywayvet:
	$(GO) run ./cmd/skywayvet ./...

# Run each analyzer against its testdata fixture package standalone: the
# fixture `// want` expectations are the analyzers' behavioural contract.
lint-fixtures:
	$(GO) test -run 'Test.*Fixture' ./internal/analyzers/

race:
	$(GO) test -race ./...

# Race tests with every dataflow cluster forced onto the concurrent
# task path (per-executor goroutines, concurrent Skyway senders).
race-parallel:
	SKYWAY_PARALLEL=4 $(GO) test -race ./...

# Full test suite with the heap/buffer invariant verifier enabled.
verify:
	SKYWAY_VERIFY=1 $(GO) test ./...

check: build vet skywayvet race

check-parallel: build vet skywayvet race-parallel
