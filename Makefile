# Development entry points. `make check` is the pre-PR gate.

GO ?= go

.PHONY: build test vet skywayvet lint-fixtures race race-parallel verify check check-parallel bench-json bench-cmp

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

skywayvet:
	$(GO) run ./cmd/skywayvet ./...

# Run each analyzer against its testdata fixture package standalone: the
# fixture `// want` expectations are the analyzers' behavioural contract.
lint-fixtures:
	$(GO) test -run 'Test.*Fixture' ./internal/analyzers/

race:
	$(GO) test -race ./...

# Race tests with every dataflow cluster forced onto the concurrent
# task path (per-executor goroutines, concurrent Skyway senders).
race-parallel:
	SKYWAY_PARALLEL=4 $(GO) test -race ./...

# Full test suite with the heap/buffer invariant verifier enabled.
verify:
	SKYWAY_VERIFY=1 $(GO) test ./...

# Benchmark trajectory: regenerate BENCH_spark.json / BENCH_flink.json at the
# canonical smoke scale. Override BENCH_SCALE / BENCH_SF for bigger runs and
# BENCH_DIR to write somewhere other than the repo root.
BENCH_SCALE ?= 0.05
BENCH_SF    ?= 0.25
BENCH_DIR   ?= .

bench-json:
	mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/sparkbench -scale $(BENCH_SCALE) -bench-json $(BENCH_DIR)/BENCH_spark.json
	$(GO) run ./cmd/flinkbench -sf $(BENCH_SF) -bench-json $(BENCH_DIR)/BENCH_flink.json

# Compare a freshly generated trajectory against the checked-in baselines.
bench-cmp:
	$(GO) run ./cmd/benchcmp -tol 0.20 BENCH_spark.json $(BENCH_DIR)/BENCH_spark.json
	$(GO) run ./cmd/benchcmp -tol 0.20 BENCH_flink.json $(BENCH_DIR)/BENCH_flink.json

check: build vet skywayvet race

check-parallel: build vet skywayvet race-parallel
