// Package skyway is a Go reproduction of "Skyway: Connecting Managed Heaps
// in Distributed Big Data Systems" (Nguyen et al., ASPLOS 2018): a data
// transfer mechanism that moves object graphs between managed heaps without
// serialization by copying objects verbatim, relativizing pointers in one
// linear pass, and numbering types globally.
//
// Because Go exposes no hooks into its own runtime, the library ships the
// managed runtime Skyway modifies as an explicit substrate: a heap with a
// 64-bit HotSpot-style object layout, a classloader, and a generational
// garbage collector. A Runtime plays the role of one JVM process; object
// graphs built in one Runtime transfer to another over any io.Writer /
// io.Reader pair (files, sockets, in-memory buffers).
//
// Quick start:
//
//	cp := skyway.NewClassPath(
//		&skyway.ClassDef{Name: "Point", Fields: []skyway.FieldDef{
//			{Name: "x", Kind: skyway.Int32},
//			{Name: "y", Kind: skyway.Int32},
//		}},
//	)
//	cluster := skyway.NewInProcRegistry()
//	sender, _ := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "a", Registry: cluster.Client()})
//	receiver, _ := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "b", Registry: cluster.Client()})
//
//	svc := skyway.NewService(sender)
//	var buf bytes.Buffer
//	w := svc.NewWriter(&buf)
//	w.WriteObject(obj)
//	w.Close()
//
//	r := skyway.NewReader(receiver, &buf)
//	remote, _ := r.ReadObject()
//
// See the examples/ directory for complete programs, and DESIGN.md for the
// mapping from the paper's sections to packages.
package skyway

import (
	"io"
	"net"

	"skyway/internal/core"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

// Re-exported object-model types.
type (
	// ClassDef declares a class on the cluster classpath.
	ClassDef = klass.ClassDef
	// FieldDef declares one field of a ClassDef.
	FieldDef = klass.FieldDef
	// Kind is a field's primitive category.
	Kind = klass.Kind
	// Klass is a loaded class with resolved layout.
	Klass = klass.Klass
	// ClassPath is the set of class definitions every node shares.
	ClassPath = klass.Path
	// Layout selects a runtime's object header geometry.
	Layout = klass.Layout

	// Addr is an object reference within a Runtime's heap; 0 is null.
	Addr = heap.Addr
	// HeapConfig sizes a Runtime's heap regions.
	HeapConfig = heap.Config

	// Runtime is one simulated managed runtime (a "JVM process").
	Runtime = vm.Runtime
	// RuntimeOptions configures NewRuntime.
	RuntimeOptions = vm.Options

	// Service is the per-runtime Skyway transfer service: shuffle phases
	// and stream creation.
	Service = core.Skyway
	// Writer streams object graphs out of a heap.
	Writer = core.Writer
	// Reader receives object graphs into a heap.
	Reader = core.Reader
	// TransferStats aggregates a service's transfer volume.
	TransferStats = core.Stats
)

// Field kinds.
const (
	Bool    = klass.Bool
	Int8    = klass.Int8
	Int16   = klass.Int16
	Char    = klass.Char
	Int32   = klass.Int32
	Float32 = klass.Float32
	Int64   = klass.Int64
	Float64 = klass.Float64
	Ref     = klass.Ref
)

// Null is the null object reference.
const Null = heap.Null

// NewClassPath builds a classpath from definitions, panicking on invalid
// schemas (they are static program data).
func NewClassPath(defs ...*ClassDef) *ClassPath {
	return klass.NewPath().MustDefine(defs...)
}

// NewRuntime boots a runtime over cp.
func NewRuntime(cp *ClassPath, opts RuntimeOptions) (*Runtime, error) {
	return vm.NewRuntime(cp, opts)
}

// NewService creates the Skyway transfer service for a runtime. One service
// per runtime; writers created from it share the runtime's shuffle phase.
func NewService(rt *Runtime) *Service { return core.New(rt) }

// NewReader opens a Skyway object input stream — the receiving end of a
// transfer — reading from r into rt's heap.
func NewReader(rt *Runtime, r io.Reader) *Reader { return core.NewReader(rt, r) }

// Writer options.
var (
	// WithBufferSize sets a writer's output-buffer capacity.
	WithBufferSize = core.WithBufferSize
	// WithTargetLayout adjusts clones for a receiver with different
	// header geometry (heterogeneous clusters).
	WithTargetLayout = core.WithTargetLayout
	// WithCompactHeaders compresses reconstructible header words and
	// padding on the wire (the paper's §5.2 future work), trading CPU
	// for bytes.
	WithCompactHeaders = core.WithCompactHeaders
)

// InProcRegistry hosts the driver-side global type registry in-process —
// the usual configuration for single-process multi-runtime deployments.
type InProcRegistry struct{ reg *registry.Registry }

// NewInProcRegistry creates an empty driver registry.
func NewInProcRegistry() *InProcRegistry {
	return &InProcRegistry{reg: registry.NewRegistry()}
}

// Client returns a registry client to pass to RuntimeOptions.Registry.
func (r *InProcRegistry) Client() registry.Client { return registry.InProc{R: r.reg} }

// Registry exposes the underlying driver registry (diagnostics, serving).
func (r *InProcRegistry) Registry() *registry.Registry { return r.reg }

// ServeRegistry exposes a driver registry over TCP for remote workers —
// Algorithm 1's daemon. Close the returned server to stop.
func ServeRegistry(r *InProcRegistry, ln net.Listener) *registry.Server {
	return registry.Serve(r.reg, ln)
}

// DialRegistry connects a worker to a remote driver registry.
func DialRegistry(addr string) (registry.Client, error) { return registry.Dial(addr) }

// DefaultHeapConfig returns a modest heap sized for examples and tests.
func DefaultHeapConfig() HeapConfig { return heap.DefaultConfig() }
