package skyway

import (
	"bufio"
	"fmt"
	"net"
	"os"

	"skyway/internal/core"
)

// Convenience stream constructors mirroring the paper's
// SkywayFileOutputStream / SkywayFileInputStream and
// SkywaySocketOutputStream / SkywaySocketInputStream classes (§3.3): one can
// program with Skyway the same way as with the standard object streams.

// FileWriter is a Skyway object output stream backed by a file.
type FileWriter struct {
	*Writer
	f  *os.File
	bw *bufio.Writer
}

// NewFileWriter opens (creating/truncating) path as a Skyway object output
// stream on svc's runtime.
func NewFileWriter(svc *Service, path string, opts ...core.WriterOption) (*FileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("skyway: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	return &FileWriter{Writer: svc.NewWriter(bw, opts...), f: f, bw: bw}, nil
}

// Close finishes the stream and closes the file.
func (w *FileWriter) Close() error {
	if err := w.Writer.Close(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// FileReader is a Skyway object input stream backed by a file.
type FileReader struct {
	*Reader
	f *os.File
}

// NewFileReader opens path as a Skyway object input stream into rt's heap.
func NewFileReader(rt *Runtime, path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("skyway: %w", err)
	}
	return &FileReader{Reader: NewReader(rt, f), f: f}, nil
}

// Close closes the underlying file. Received objects stay live in the heap
// (release them with Free when done).
func (r *FileReader) Close() error { return r.f.Close() }

// SocketWriter is a Skyway object output stream over a TCP connection.
type SocketWriter struct {
	*Writer
	conn net.Conn
	bw   *bufio.Writer
}

// DialWriter connects to addr and opens a Skyway object output stream over
// the connection.
func DialWriter(svc *Service, addr string, opts ...core.WriterOption) (*SocketWriter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("skyway: %w", err)
	}
	bw := bufio.NewWriterSize(conn, 64<<10)
	return &SocketWriter{Writer: svc.NewWriter(bw, opts...), conn: conn, bw: bw}, nil
}

// Close finishes the stream and closes the connection.
func (w *SocketWriter) Close() error {
	if err := w.Writer.Close(); err != nil {
		w.conn.Close()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.conn.Close()
		return err
	}
	return w.conn.Close()
}

// AcceptReader accepts one connection from ln and opens a Skyway object
// input stream over it.
func AcceptReader(rt *Runtime, ln net.Listener) (*Reader, net.Conn, error) {
	conn, err := ln.Accept()
	if err != nil {
		return nil, nil, fmt.Errorf("skyway: %w", err)
	}
	return NewReader(rt, conn), conn, nil
}
