package skyway_test

import (
	"net"
	"path/filepath"
	"testing"

	"skyway"
)

// Tests for the §3.3 file/socket stream conveniences.

func TestFileStreams(t *testing.T) {
	cp := pointPath()
	reg := skyway.NewInProcRegistry()
	snd, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "fs", Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "fr", Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "shuffle-0.skyway")
	svc := skyway.NewService(snd)
	w, err := skyway.NewFileWriter(svc, path)
	if err != nil {
		t.Fatal(err)
	}
	k := snd.MustLoad("Point")
	for i := 0; i < 10; i++ {
		p := snd.MustNew(k)
		snd.SetInt(p, k.FieldByName("x"), int64(i))
		if err := w.WriteObject(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := skyway.NewFileReader(rcv, path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d roots", len(got))
	}
	rk := rcv.MustLoad("Point")
	for i, g := range got {
		if rcv.GetInt(g, rk.FieldByName("x")) != int64(i) {
			t.Fatalf("root %d corrupted", i)
		}
	}
}

func TestSocketStreams(t *testing.T) {
	cp := pointPath()
	reg := skyway.NewInProcRegistry()
	snd, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "ss", Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "sr", Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		x   int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		r, conn, err := skyway.AcceptReader(rcv, ln)
		if err != nil {
			done <- result{err: err}
			return
		}
		defer conn.Close()
		got, err := r.ReadObject()
		if err != nil {
			done <- result{err: err}
			return
		}
		k := rcv.MustLoad("Point")
		done <- result{x: rcv.GetInt(got, k.FieldByName("x"))}
	}()

	svc := skyway.NewService(snd)
	w, err := skyway.DialWriter(svc, ln.Addr().String(), skyway.WithCompactHeaders())
	if err != nil {
		t.Fatal(err)
	}
	k := snd.MustLoad("Point")
	p := snd.MustNew(k)
	snd.SetInt(p, k.FieldByName("x"), 4711)
	if err := w.WriteObject(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.x != 4711 {
		t.Fatalf("received x = %d", res.x)
	}
}
