// Command jsbsbench reproduces Figure 7: the Java Serializer Benchmark Set
// comparison across the serializer design space, distributed JSBS-style
// (serialize, broadcast to the cluster peers, deserialize).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/debug"
	"time"

	"skyway/internal/experiments"
	"skyway/internal/fault"
	"skyway/internal/netsim"
	"skyway/internal/obs"
)

func main() {
	// Keep Go's own collector out of the timed sections: collections are
	// forced between repetitions instead.
	debug.SetGCPercent(600)
	n := flag.Int("n", 20000, "media-content graphs per run")
	infiniband := flag.Bool("infiniband", false, "use the InfiniBand model instead of 1 GbE")
	faultSpec := flag.String("fault", "", "failpoint plan, e.g. 'registry.exchange.dup:on' (grammar in internal/fault; also read from SKYWAY_FAULT)")
	flag.Parse()
	if *faultSpec != "" {
		if err := fault.Configure(*faultSpec); err != nil {
			log.Fatalf("-fault: %v", err)
		}
	}
	if fault.Active() {
		defer fault.Report(os.Stdout)
	}
	defer obs.DumpIfEnabled()

	model := netsim.Paper1GbE()
	if *infiniband {
		model = netsim.Infiniband()
	}

	results, err := experiments.RunJSBS(*n, model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 7 — JSBS (%d media graphs, broadcast at %.1f GB/s effective — overlap-calibrated, see netsim)\n\n", *n, model.NetBandwidth/1e9)
	fmt.Printf("%-20s %12s %12s %12s %12s %10s\n", "library", "ser", "deser", "network", "total", "bytes")
	var sky, kryoManual, java time.Duration
	for _, r := range results {
		fmt.Printf("%-20s %12v %12v %12v %12v %10d\n",
			r.Lib, r.Ser.Round(time.Microsecond), r.Deser.Round(time.Microsecond),
			r.Net.Round(time.Microsecond), r.Total().Round(time.Microsecond), r.Bytes)
		switch r.Lib {
		case "skyway":
			sky = r.Ser + r.Deser
		case "kryo-manual":
			kryoManual = r.Ser + r.Deser
		case "java":
			java = r.Ser + r.Deser
		}
	}
	if sky > 0 {
		fmt.Printf("\nS/D speedups over skyway: kryo-manual %.1fx, java %.1fx (paper: 2.2x, 67.3x)\n",
			float64(kryoManual)/float64(sky), float64(java)/float64(sky))
	}
}
