// Command benchcmp compares two benchmark trajectory files (BENCH_spark.json /
// BENCH_flink.json) and exits non-zero when any entry's Total regressed past
// the tolerance, or when an entry present in the baseline is missing from the
// current run. CI runs it against the checked-in baselines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"skyway/internal/experiments"
)

func main() {
	tol := flag.Float64("tol", 0.20, "allowed Total regression before failing (0.20 = +20%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [-tol f] base.json current.json\n")
		os.Exit(2)
	}
	base, err := experiments.ReadBenchFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("benchcmp: %v", err)
	}
	cur, err := experiments.ReadBenchFile(flag.Arg(1))
	if err != nil {
		log.Fatalf("benchcmp: %v", err)
	}
	regs := experiments.CompareBench(base, cur, *tol)
	if len(regs) == 0 {
		fmt.Printf("benchcmp: %d entries within +%.0f%% of baseline\n", len(base.Entries), *tol*100)
		return
	}
	for _, r := range regs {
		if r.Missing {
			fmt.Printf("MISSING  %-40s baseline %v\n", r.Key, r.BaseNS)
			continue
		}
		fmt.Printf("REGRESS  %-40s %v -> %v (%.2fx, tol %.2fx)\n", r.Key, r.BaseNS, r.CurNS, r.Ratio, 1+*tol)
	}
	os.Exit(1)
}
