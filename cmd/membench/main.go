// Command membench reproduces the §5.2 memory-overhead measurement: the
// Skyway baddr header word's cost in peak heap usage, measured by running
// the Spark workloads on heaps with and without the extra word (the paper
// compared against an unmodified HotSpot with periodic pmap sampling).
package main

import (
	"flag"
	"fmt"
	"log"

	"skyway/internal/experiments"
	"skyway/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 0.15, "graph scale (1.0 = 1/100 of the paper's sizes)")
	flag.Parse()
	defer obs.DumpIfEnabled()

	cfg := experiments.DefaultSparkConfig()
	cfg.GraphScale = *scale

	res, err := experiments.RunMemOverhead(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baddr header-word memory overhead (paper: 2.1%–21.8%, avg 15.4%)")
	var sum float64
	for _, r := range res {
		fmt.Printf("%-4s peak %8.1f MiB (baddr) vs %8.1f MiB (vanilla): +%.1f%%\n",
			r.App, float64(r.PeakWithBaddr)/(1<<20), float64(r.PeakWithoutBaddr)/(1<<20), r.OverheadFraction*100)
		sum += r.OverheadFraction
	}
	fmt.Printf("average: +%.1f%%\n", sum/float64(len(res))*100)
}
