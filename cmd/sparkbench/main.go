// Command sparkbench reproduces the Spark side of the evaluation: the §2.2
// motivation breakdown (Figure 3), the serializer matrix (Figure 8(a)), the
// normalized summary (Table 2), the dataset inventory (Table 1), the §5.2
// byte-composition analysis, and the memory-overhead measurement.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"skyway/internal/datagen"
	"skyway/internal/experiments"
	"skyway/internal/fault"
	"skyway/internal/metrics"
	"skyway/internal/obs"
)

func main() {
	var (
		fig3      = flag.Bool("fig3", false, "Figure 3: TC/LiveJournal breakdown under Kryo and Java")
		fig8a     = flag.Bool("fig8a", false, "Figure 8(a): apps x graphs x serializers")
		table1    = flag.Bool("table1", false, "Table 1: graph inputs")
		table2    = flag.Bool("table2", false, "Table 2: normalized summary (implies -fig8a)")
		bytesA    = flag.Bool("bytes", false, "extra-bytes composition analysis")
		mem       = flag.Bool("mem", false, "memory overhead of the baddr header word")
		scale     = flag.Float64("scale", 0.15, "graph scale (1.0 = 1/100 of the paper's sizes)")
		apps      = flag.String("apps", "WC,PR,CC,TC", "comma-separated app subset for -fig8a")
		heapMB    = flag.Int("heap", 0, "executor heap size in MB (0 = per-experiment default: 96 for the memory-pressured -fig3 motivation run, 1024 elsewhere)")
		parallel  = flag.Int("parallel", 0, "concurrent executor tasks per stage (0/1 = sequential, -1 = one per worker)")
		benchJSON = flag.String("bench-json", "", "write the benchmark trajectory (fig3 + fig8a entries) to this JSON file")
		faultSpec = flag.String("fault", "", "failpoint plan, e.g. 'dataflow.fetch.torn:1in100' (grammar in internal/fault; also read from SKYWAY_FAULT)")
	)
	flag.Parse()
	if *faultSpec != "" {
		if err := fault.Configure(*faultSpec); err != nil {
			log.Fatalf("-fault: %v", err)
		}
	}
	if fault.Active() {
		defer fault.Report(os.Stdout)
	}
	if !*fig3 && !*fig8a && !*table1 && !*table2 && !*bytesA && !*mem && *benchJSON == "" {
		*fig3, *table1, *table2, *bytesA, *mem = true, true, true, true, true
	}
	if *benchJSON != "" {
		// The trajectory file needs both figure data sets.
		*fig3 = true
		*fig8a = true
	}
	defer obs.DumpIfEnabled()

	cfg := experiments.DefaultSparkConfig()
	cfg.GraphScale = *scale
	cfg.HeapMB = *heapMB
	cfg.Parallel = *parallel
	if cfg.HeapMB == 0 {
		cfg.HeapMB = 1024
	}
	// Figure 3 is the §2.2 motivation experiment: the paper measured it on
	// memory-pressured executors where GC pauses and S/D costs dominate, so
	// its default heap is deliberately tight.
	fig3Cfg := cfg
	if *heapMB == 0 {
		fig3Cfg.HeapMB = 96
	}

	if *table1 {
		fmt.Println("Table 1 — graph inputs (scaled)")
		fmt.Printf("%-14s %12s %12s %10s  %s\n", "graph", "#vertices", "#edges", "maxdeg", "description")
		for _, spec := range datagen.PaperGraphs(*scale) {
			g := spec.Generate()
			fmt.Printf("%-14s %12d %12d %10d  %s\n", spec.Name, g.N, g.M, g.MaxDegree(), spec.Description)
		}
		fmt.Println()
	}

	var fig3Res []experiments.Fig3Result
	if *fig3 {
		fmt.Println("Figure 3 — Spark S/D cost: TriangleCounting over LiveJournal (3 workers)")
		var err error
		fig3Res, err = experiments.RunFig3(fig3Cfg)
		if err != nil {
			log.Fatal(err)
		}
		printBreakdownTable(toCells(fig3Res))
		for _, r := range fig3Res {
			fmt.Printf("  %-6s S/D share of total: %.1f%% (paper: >30%%)\n", r.Serializer, r.Breakdown.SDShare()*100)
		}
		fmt.Println()
	}

	var cells []experiments.SparkCell
	if *fig8a || *table2 {
		appList := parseApps(*apps)
		var err error
		cells, err = experiments.RunSparkMatrix(cfg, datagen.PaperGraphs(*scale), appList)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *fig8a {
		fmt.Println("Figure 8(a) — Spark runtime breakdown per app x graph x serializer")
		printMatrix(cells)
	}
	if *table2 {
		fmt.Println("Table 2 — performance normalized to the Java serializer (lo ~ hi (geomean); lower is better, Size > 1 = more bytes)")
		for _, ser := range []string{"kryo", "skyway"} {
			sum := experiments.Table2(cells)[ser]
			fmt.Printf("  %-8s %s\n", ser, sum.Row())
		}
		fmt.Println("  paper:   kryo Overall geomean 0.76, skyway 0.64; skyway Des 0.16, Size 1.15 (vs kryo 0.52)")
		fmt.Println()
	}

	if *bytesA {
		fmt.Println("Extra-bytes composition (§5.2) — PageRank/LiveJournal")
		eb, err := experiments.RunExtraBytes(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  skyway bytes %d vs kryo bytes %d (%.2fx; paper: 1.77x)\n",
			eb.SkywayBytes, eb.KryoBytes, float64(eb.SkywayBytes)/float64(eb.KryoBytes))
		fmt.Printf("  skyway stream composition: headers %.0f%%, padding %.0f%%, pointers %.0f%% of extra bytes (paper: 51%%/34%%/15%%)\n\n",
			eb.HeaderShare*100, eb.PadShare*100, eb.PtrShare*100)
	}

	if *benchJSON != "" {
		f := experiments.SparkBenchFile(fig3Res, cells)
		if err := f.Write(*benchJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchmark trajectory (%d entries) written to %s\n\n", len(f.Entries), *benchJSON)
	}

	if *mem {
		fmt.Println("Memory overhead of the baddr header word (§5.2; paper: 2.1%–21.8%, avg 15.4%)")
		res, err := experiments.RunMemOverhead(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for _, r := range res {
			fmt.Printf("  %-4s peak heap %8.1f MiB with baddr, %8.1f MiB without: +%.1f%%\n",
				r.App, float64(r.PeakWithBaddr)/(1<<20), float64(r.PeakWithoutBaddr)/(1<<20), r.OverheadFraction*100)
			sum += r.OverheadFraction
		}
		fmt.Printf("  average overhead: %.1f%%\n", sum/float64(len(res))*100)
	}
}

func parseApps(s string) []experiments.SparkApp {
	var out []experiments.SparkApp
	for _, a := range experiments.SparkApps() {
		for _, tok := range splitComma(s) {
			if string(a) == tok {
				out = append(out, a)
			}
		}
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func toCells(res []experiments.Fig3Result) []experiments.SparkCell {
	var cells []experiments.SparkCell
	for _, r := range res {
		cells = append(cells, experiments.SparkCell{
			App: experiments.TC, Graph: "LiveJournal", Serializer: r.Serializer, Breakdown: r.Breakdown,
		})
	}
	return cells
}

func printBreakdownTable(cells []experiments.SparkCell) {
	fmt.Printf("  %-6s %-14s %-8s %10s %10s %10s %10s %10s %10s %12s %12s\n",
		"app", "graph", "ser", "total", "compute", "ser", "writeIO", "deser", "readIO", "localB", "remoteB")
	for _, c := range cells {
		b := c.Breakdown
		fmt.Printf("  %-6s %-14s %-8s %10v %10v %10v %10v %10v %10v %12d %12d\n",
			c.App, c.Graph, c.Serializer,
			b.Total().Round(time.Millisecond), b.Compute.Round(time.Millisecond), b.Ser.Round(time.Millisecond),
			b.WriteIO.Round(time.Millisecond), b.Deser.Round(time.Millisecond), b.ReadIO.Round(time.Millisecond),
			b.LocalBytes, b.RemoteBytes)
	}
}

func printMatrix(cells []experiments.SparkCell) {
	byKey := make(map[string][]experiments.SparkCell)
	var order []string
	for _, c := range cells {
		k := string(c.App) + "-" + c.Graph
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], c)
	}
	for _, k := range order {
		printBreakdownTable(byKey[k])
		// Digest agreement check across serializers.
		group := byKey[k]
		for _, c := range group[1:] {
			if c.Digest != group[0].Digest {
				fmt.Printf("  WARNING: %s digest %v differs from %s digest %v\n",
					c.Serializer, c.Digest, group[0].Serializer, group[0].Digest)
			}
		}
		fmt.Println()
	}
	_ = metrics.Breakdown{}
}
