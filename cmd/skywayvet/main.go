// Command skywayvet is the project's custom vet multichecker: it runs the
// skyway-specific static analyzers (addrarith, rawslab, atomicbaddr) over
// the given package patterns and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/skywayvet ./...
//	go run ./cmd/skywayvet -list
//	go run ./cmd/skywayvet -run addrarith ./internal/gc/...
//
// It needs only the Go toolchain: packages are loaded via `go list -export`
// and type-checked from source against the toolchain's export data.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skyway/internal/analyzers"
	"skyway/internal/analyzers/framework"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *run != "" {
		byName := make(map[string]*framework.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "skywayvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skywayvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := framework.RunAll(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skywayvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
