// Command skywayvet is the project's custom vet multichecker: it runs the
// skyway-specific static analyzers (addrarith, rawslab, atomicbaddr,
// staleaddr, writebarrier, wiretaint, atomicmix) over the given package
// patterns and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/skywayvet ./...
//	go run ./cmd/skywayvet -list
//	go run ./cmd/skywayvet -json ./...
//	go run ./cmd/skywayvet -sarif ./... > skywayvet.sarif
//	go run ./cmd/skywayvet -analyzers wiretaint,atomicmix ./...
//	go run ./cmd/skywayvet -run staleaddr,writebarrier ./internal/vm/...
//
// -analyzers and -run are synonyms (the former reads better in CI job
// definitions); selecting a subset changes which checks run but never the
// exit-code contract or the -json/-sarif schema. It needs only the Go
// toolchain: packages are loaded via `go list -export` and type-checked
// from source against the toolchain's export data.
//
// Exit codes: 0 clean, 1 findings reported, 2 usage error (unknown
// analyzer, conflicting flags), 3 the packages failed to load or
// type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"skyway/internal/analyzers"
	"skyway/internal/analyzers/framework"
)

const (
	exitClean     = 0
	exitFindings  = 1
	exitUsage     = 2
	exitLoadError = 3
)

// report is the -json output shape.
type report struct {
	Findings []jsonFinding  `json:"findings"`
	Counts   map[string]int `json:"counts"`
	Total    int            `json:"total"`
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	analyzerList := flag.String("analyzers", "", "synonym for -run")
	asJSON := flag.Bool("json", false, "emit findings as JSON on stdout")
	asSARIF := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(os.Stderr, "skywayvet: -json and -sarif are mutually exclusive")
		os.Exit(exitUsage)
	}
	if *run != "" && *analyzerList != "" && *run != *analyzerList {
		fmt.Fprintln(os.Stderr, "skywayvet: -run and -analyzers are synonyms; pass only one")
		os.Exit(exitUsage)
	}
	if *run == "" {
		*run = *analyzerList
	}

	selected := all
	if *run != "" {
		byName := make(map[string]*framework.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "skywayvet: unknown analyzer %q\n", name)
				os.Exit(exitUsage)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skywayvet: %v\n", err)
		os.Exit(exitLoadError)
	}
	findings, err := framework.RunAll(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skywayvet: %v\n", err)
		os.Exit(exitLoadError)
	}

	counts := make(map[string]int, len(selected))
	for _, f := range findings {
		counts[f.Analyzer]++
	}

	if *asSARIF {
		if err := writeSARIF(os.Stdout, selected, findings); err != nil {
			fmt.Fprintf(os.Stderr, "skywayvet: %v\n", err)
			os.Exit(exitLoadError)
		}
	} else if *asJSON {
		rep := report{Findings: []jsonFinding{}, Counts: counts, Total: len(findings)}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "skywayvet: %v\n", err)
			os.Exit(exitLoadError)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		// Per-analyzer summary, in the analyzers' registration order; the
		// framework's own suppression-audit findings come last.
		parts := make([]string, 0, len(selected)+1)
		for _, a := range selected {
			if n := counts[a.Name]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", a.Name, n))
			}
		}
		if n := counts[framework.SuppressionAnalyzerName]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", framework.SuppressionAnalyzerName, n))
		}
		switch {
		case len(findings) == 0:
			fmt.Printf("skywayvet: %d packages, %d analyzers, no findings\n", len(pkgs), len(selected))
		default:
			fmt.Printf("skywayvet: %d findings (%s)\n", len(findings), strings.Join(parts, ", "))
		}
	}

	if len(findings) > 0 {
		os.Exit(exitFindings)
	}
	os.Exit(exitClean)
}
