package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"skyway/internal/analyzers/framework"
)

// SARIF 2.1.0 output (-sarif): the minimal static-analysis results format
// slice that code-scanning UIs ingest — one run, one rule per analyzer, one
// result per finding with a physical location. Kept by hand rather than
// vendoring a SARIF package; the subset below is stable and tiny.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits the findings of the selected analyzers as one SARIF run.
// File paths are made repository-relative when possible so uploads anchor
// to the checked-out tree.
func writeSARIF(w io.Writer, selected []*framework.Analyzer, findings []framework.Finding) error {
	rules := make([]sarifRule, 0, len(selected)+1)
	for _, a := range selected {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               framework.SuppressionAnalyzerName,
		ShortDescription: sarifMessage{Text: "a //skyway:allow directive must carry a justification"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relativeURI(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "skywayvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relativeURI rewrites an absolute path relative to the working directory
// (the module root in every supported invocation) with forward slashes.
func relativeURI(path string) string {
	wd, err := filepath.Abs(".")
	if err != nil {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || rel == "" || rel[0] == '.' && len(rel) > 1 && rel[1] == '.' {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
