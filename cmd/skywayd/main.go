// Command skywayd runs either half of a Skyway cluster's shared
// infrastructure: by default the driver-side global type registry as a
// standalone daemon (Algorithm 1's driver, part 2 — workers connect over TCP
// to bulk-fetch the registry view at startup and to look up IDs for newly
// loaded classes), or with -executor an executor block server that stores
// its executor's shuffle blocks, serves them to reducers over framed TCP
// streams, and advertises itself in the registry for peer discovery.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"skyway/internal/obs"
	"skyway/internal/registry"
	transporttcp "skyway/internal/transport/tcp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7741", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file: restored at startup if present, written at shutdown (restart-safe type IDs, §4.1)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text metrics on this address (e.g. 127.0.0.1:9090) at /metrics")
	executor := flag.Bool("executor", false, "run as an executor block server instead of the registry daemon")
	exID := flag.Int("id", 0, "executor ID (with -executor)")
	exRegistry := flag.String("registry", "127.0.0.1:7741", "registry daemon address to announce to (with -executor; empty skips the announce)")
	exListen := flag.String("shuffle-listen", "127.0.0.1:0", "block server listen address (with -executor)")
	flag.Parse()

	if *executor {
		runExecutor(*exID, *exRegistry, *exListen)
		return
	}

	reg := registry.NewRegistry()
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			restored, err := registry.Restore(f)
			f.Close()
			if err != nil {
				log.Fatalf("skywayd: restoring %s: %v", *snapshot, err)
			}
			reg = restored
			log.Printf("skywayd: restored %d types from %s", reg.Len(), *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("skywayd: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("skywayd: %v", err)
	}
	srv := registry.Serve(reg, ln)
	log.Printf("skywayd: type registry listening on %s", ln.Addr())

	if *metricsAddr != "" {
		obs.RegisterGauge("skyway_registry_types", "Types currently registered in the daemon registry.",
			func() float64 { return float64(reg.Len()) })
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.WriteMetrics(w); err != nil {
				log.Printf("skywayd: /metrics: %v", err)
			}
		})
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("skywayd: metrics: %v", err)
		}
		go func() {
			if err := http.Serve(mln, mux); err != nil && !os.IsTimeout(err) {
				log.Printf("skywayd: metrics server: %v", err)
			}
		}()
		log.Printf("skywayd: Prometheus metrics on http://%s/metrics", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("skywayd: shutting down with %d registered types", reg.Len())
	if err := srv.Close(); err != nil {
		log.Fatalf("skywayd: close: %v", err)
	}
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Fatalf("skywayd: %v", err)
		}
		if err := reg.Snapshot(f); err != nil {
			log.Fatalf("skywayd: snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("skywayd: snapshot: %v", err)
		}
		log.Printf("skywayd: snapshot written to %s", *snapshot)
	}
}

// runExecutor is skywayd's -executor mode: a block server process that joins
// the cluster by announcing its bound address in the registry and serves
// shuffle/broadcast blocks until interrupted.
func runExecutor(id int, registryAddr, listenAddr string) {
	ex, err := transporttcp.StartExecutor(id, registryAddr, listenAddr)
	if err != nil {
		log.Fatalf("skywayd: %v", err)
	}
	log.Printf("skywayd: executor %d block server listening on %s", id, ex.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if err := ex.Close(); err != nil {
		log.Fatalf("skywayd: executor close: %v", err)
	}
}
