// Command flinkbench reproduces the Flink side of the evaluation: the
// QA–QE query matrix under the built-in serializers and Skyway
// (Figure 8(b)), the query inventory (Table 3), and the normalized summary
// (Table 4).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"skyway/internal/batch"
	"skyway/internal/experiments"
	"skyway/internal/fault"
	"skyway/internal/obs"
)

func main() {
	var (
		list      = flag.Bool("list", false, "Table 3: query descriptions")
		fig8b     = flag.Bool("fig8b", false, "Figure 8(b): QA-QE under built-in and Skyway serializers")
		table4    = flag.Bool("table4", false, "Table 4: normalized summary (implies -fig8b)")
		sf        = flag.Float64("sf", 1.0, "TPC-H scale factor (1.0 ≈ 60k lineitems)")
		benchJSON = flag.String("bench-json", "", "write the benchmark trajectory (fig8b entries) to this JSON file")
		faultSpec = flag.String("fault", "", "failpoint plan, e.g. 'core.chunk.bitflip:1in100' (grammar in internal/fault; also read from SKYWAY_FAULT)")
	)
	flag.Parse()
	if *faultSpec != "" {
		if err := fault.Configure(*faultSpec); err != nil {
			log.Fatalf("-fault: %v", err)
		}
	}
	if fault.Active() {
		defer fault.Report(os.Stdout)
	}
	if !*list && !*fig8b && !*table4 && *benchJSON == "" {
		*list, *fig8b, *table4 = true, true, true
	}
	if *benchJSON != "" {
		*fig8b = true
	}
	defer obs.DumpIfEnabled()

	if *list {
		fmt.Println("Table 3 — queries")
		for _, q := range batch.AllQueries() {
			fmt.Printf("  %s  %s\n", q, batch.Describe(q))
		}
		fmt.Println()
	}

	if !*fig8b && !*table4 && *benchJSON == "" {
		return
	}
	cfg := experiments.DefaultFlinkConfig()
	cfg.SF = *sf
	cells, err := experiments.RunFlinkMatrix(cfg, batch.AllQueries())
	if err != nil {
		log.Fatal(err)
	}

	if *fig8b {
		fmt.Printf("Figure 8(b) — Flink QA-QE (sf=%.2f, 3 task managers)\n", *sf)
		fmt.Printf("  %-4s %-14s %10s %10s %10s %10s %10s %10s %12s\n",
			"q", "serializer", "total", "compute", "ser", "writeIO", "deser", "readIO", "bytes")
		digests := make(map[batch.Query]float64)
		for _, c := range cells {
			b := c.Breakdown
			fmt.Printf("  %-4s %-14s %10v %10v %10v %10v %10v %10v %12d\n",
				c.Query, c.Serializer,
				b.Total().Round(time.Millisecond), b.Compute.Round(time.Millisecond), b.Ser.Round(time.Millisecond),
				b.WriteIO.Round(time.Millisecond), b.Deser.Round(time.Millisecond), b.ReadIO.Round(time.Millisecond),
				b.ShuffleBytes)
			if prev, ok := digests[c.Query]; ok && prev != c.Digest {
				fmt.Printf("  WARNING: %s digests differ across serializers (%v vs %v)\n", c.Query, prev, c.Digest)
			}
			digests[c.Query] = c.Digest
		}
		fmt.Println()
	}

	if *benchJSON != "" {
		f := experiments.FlinkBenchFile(cells)
		if err := f.Write(*benchJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchmark trajectory (%d entries) written to %s\n", len(f.Entries), *benchJSON)
	}

	if *table4 {
		fmt.Println("Table 4 — Skyway normalized to Flink's built-in serializers (lo ~ hi (geomean))")
		fmt.Printf("  %s\n", experiments.Table4(cells).Row())
		fmt.Println("  paper:  Overall 0.71~0.88 (0.81), Ser (0.77), Des (0.75), Size 1.23~2.03 (1.68)")
	}
}
