// Command speedbench measures raw encode/decode throughput against the
// machine's memcpy ceiling. Skyway's claim is that transfer cost should be
// copying cost — §3's design removes the per-object translation work, so
// what remains is moving bytes. This benchmark quantifies how close the
// implementation gets:
//
//   - memcpy          — the host's sustained large-copy bandwidth (the ceiling)
//   - encode-array    — bulk corpus (long[] arrays) through a Skyway writer
//   - decode-array    — the same wire bytes through a Skyway reader
//   - decode-array-copy — decode with the direct heap byte view disabled,
//     forcing the historical stage-then-copy path (the double copy this
//     optimisation pass removed); the gap to decode-array is the win
//   - encode-rec / decode-rec — many small records, where per-object header
//     work rather than memcpy dominates
//
// Each workload runs -passes times and the best pass wins (throughput
// benchmarks want the least-disturbed run, not the average). Results print
// as a table and, with -bench-json, land in BENCH_speed.json using the same
// trajectory schema CI gates with cmd/benchcmp.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"skyway/internal/core"
	"skyway/internal/experiments"
	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

func main() {
	benchJSON := flag.String("bench-json", "", "write the speed trajectory to this JSON file")
	passes := flag.Int("passes", 7, "timed passes per workload (best pass wins)")
	arrays := flag.Int("arrays", 24, "long[] arrays in the bulk corpus")
	arrayLen := flag.Int("array-len", 64<<10, "elements per long[] array")
	records := flag.Int("records", 40000, "records in the small-object corpus")
	flag.Parse()

	snd, rcv, sky := newCluster()
	f := experiments.BenchFile{Engine: "speed"}
	add := func(name, serializer string, n int64, d time.Duration) {
		gbps := float64(n) / d.Seconds() / 1e9
		fmt.Printf("%-18s %10.3f GB/s  (%d bytes, best of %d: %v)\n", name, gbps, n, *passes, d)
		f.Entries = append(f.Entries, experiments.BenchEntry{
			Figure: "speed", App: name, Serializer: serializer,
			TotalNS: int64(d), ShuffleBytes: n, GBps: gbps,
		})
	}

	// The ceiling: one sustained large copy, same order of magnitude as the
	// bulk corpus so both hit memory the same way.
	ceiling := make([]byte, 64<<20)
	ceilingDst := make([]byte, len(ceiling))
	add("memcpy", "host", int64(len(ceiling)), bestOf(*passes, func() error {
		copy(ceilingDst, ceiling)
		return nil
	}))

	// Bulk corpus: long[] arrays — the payload shape where encode/decode is
	// purely memcpy-bound once per-object work is out of the way.
	arrayRoots := buildArrays(snd, *arrays, *arrayLen)
	wire := encodeOnce(sky, arrayRoots)
	add("encode-array", "skyway", int64(len(wire)), bestOf(*passes, encodePass(sky, arrayRoots)))
	add("decode-array", "skyway", int64(len(wire)), bestOf(*passes, decodePass(rcv, wire)))

	// The pre-optimisation baseline: disable the heap's direct byte view so
	// every decoded segment stages through a scratch buffer and is copied a
	// second time into the heap.
	prev := heap.SetByteView(false)
	add("decode-array-copy", "skyway", int64(len(wire)), bestOf(*passes, decodePass(rcv, wire)))
	heap.SetByteView(prev)

	// Small-record corpus: throughput here is bounded by per-object header
	// and field work, not memcpy — the contrast column.
	recRoots := buildRecords(snd, *records)
	recWire := encodeOnce(sky, recRoots)
	add("encode-rec", "skyway", int64(len(recWire)), bestOf(*passes, encodePass(sky, recRoots)))
	add("decode-rec", "skyway", int64(len(recWire)), bestOf(*passes, decodePass(rcv, recWire)))

	if *benchJSON != "" {
		if err := f.Write(*benchJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
}

// newCluster builds a sender/receiver runtime pair sized for the corpora,
// sharing a classpath and an in-process registry for global type IDs.
func newCluster() (*vm.Runtime, *vm.Runtime, *core.Skyway) {
	cp := klass.NewPath()
	cp.MustDefine(&klass.ClassDef{Name: "Rec", Fields: []klass.FieldDef{
		{Name: "a", Kind: klass.Int64},
		{Name: "b", Kind: klass.Int64},
		{Name: "c", Kind: klass.Float64},
	}})
	cfg := heap.DefaultConfig()
	cfg.EdenSize = 96 << 20
	cfg.OldSize = 64 << 20
	cfg.BufferSize = 96 << 20
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "speed-snd", Heap: cfg, Registry: registry.InProc{R: reg}})
	if err != nil {
		log.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "speed-rcv", Heap: cfg, Registry: registry.InProc{R: reg}})
	if err != nil {
		log.Fatal(err)
	}
	return snd, rcv, core.New(snd)
}

func buildArrays(rt *vm.Runtime, arrays, arrayLen int) []*gc.Handle {
	k := rt.MustLoad("long[]")
	roots := make([]*gc.Handle, 0, arrays)
	for i := 0; i < arrays; i++ {
		a := rt.MustNewArray(k, arrayLen)
		for j := 0; j < arrayLen; j += 17 {
			rt.ArraySetLong(a, j, int64(i)<<32|int64(j))
		}
		roots = append(roots, rt.Pin(a))
	}
	return roots
}

func buildRecords(rt *vm.Runtime, records int) []*gc.Handle {
	k := rt.MustLoad("Rec")
	roots := make([]*gc.Handle, 0, records)
	for i := 0; i < records; i++ {
		o := rt.MustNew(k)
		rt.SetInt(o, k.FieldByName("a"), int64(i))
		rt.SetInt(o, k.FieldByName("b"), int64(i)*3)
		roots = append(roots, rt.Pin(o))
	}
	return roots
}

// encodeOnce captures the wire bytes of one full encode of roots, so decode
// workloads replay exactly what encode workloads produce.
func encodeOnce(sky *core.Skyway, roots []*gc.Handle) []byte {
	var buf bytes.Buffer
	if err := encodeInto(sky, roots, &buf); err != nil {
		log.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

func encodeInto(sky *core.Skyway, roots []*gc.Handle, buf *bytes.Buffer) error {
	// Each pass is a fresh shuffle phase: the previous pass's baddr marks
	// must not turn this pass's objects into back references.
	sky.ShuffleStart()
	buf.Reset()
	w := sky.NewWriter(buf)
	for _, h := range roots {
		if err := w.WriteObject(h.Addr()); err != nil {
			return err
		}
	}
	return w.Close()
}

func encodePass(sky *core.Skyway, roots []*gc.Handle) func() error {
	var buf bytes.Buffer
	return func() error { return encodeInto(sky, roots, &buf) }
}

func decodePass(rt *vm.Runtime, wire []byte) func() error {
	return func() error {
		r := core.NewReader(rt, bytes.NewReader(wire))
		for {
			if _, err := r.ReadObject(); err != nil {
				if err == io.EOF {
					break
				}
				return err
			}
		}
		// Explicit free (§3.2) so every pass starts from an empty input-
		// buffer region.
		r.Free()
		return nil
	}
}

func bestOf(passes int, fn func() error) time.Duration {
	best := time.Duration(0)
	for i := 0; i < passes; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best
}
