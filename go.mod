module skyway

go 1.22
