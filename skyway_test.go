package skyway_test

import (
	"bytes"
	"io"
	"net"
	"testing"

	"skyway"
)

// The root-package tests exercise the public API exactly the way the README
// shows it, including the TCP registry deployment.

func pointPath() *skyway.ClassPath {
	return skyway.NewClassPath(
		&skyway.ClassDef{Name: "Point", Fields: []skyway.FieldDef{
			{Name: "x", Kind: skyway.Int32},
			{Name: "y", Kind: skyway.Int32},
			{Name: "label", Kind: skyway.Ref, Class: "java.lang.String"},
		}},
	)
}

func TestPublicAPIRoundTrip(t *testing.T) {
	cp := pointPath()
	reg := skyway.NewInProcRegistry()
	sender, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "a", Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "b", Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}

	k := sender.MustLoad("Point")
	p := sender.MustNew(k)
	ph := sender.Pin(p)
	sender.SetInt(ph.Addr(), k.FieldByName("x"), -3)
	sender.SetInt(ph.Addr(), k.FieldByName("y"), 9)
	s := sender.MustNewString("origin-ish")
	sender.SetRef(ph.Addr(), k.FieldByName("label"), s)

	var wire bytes.Buffer
	svc := skyway.NewService(sender)
	w := svc.NewWriter(&wire)
	if err := w.WriteObject(ph.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ph.Release()

	r := skyway.NewReader(receiver, &wire)
	got, err := r.ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rk := receiver.MustLoad("Point")
	if receiver.GetInt(got, rk.FieldByName("x")) != -3 || receiver.GetInt(got, rk.FieldByName("y")) != 9 {
		t.Error("coordinates corrupted")
	}
	if receiver.GoString(receiver.GetRef(got, rk.FieldByName("label"))) != "origin-ish" {
		t.Error("label corrupted")
	}
	if _, err := r.ReadObject(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestPublicAPIOverTCPRegistry(t *testing.T) {
	cp := pointPath()
	reg := skyway.NewInProcRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := skyway.ServeRegistry(reg, ln)
	defer srv.Close()

	newWorker := func(name string) *skyway.Runtime {
		client, err := skyway.DialRegistry(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: name, Registry: client})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a := newWorker("a")
	b := newWorker("b")

	// Class numbering agrees across workers regardless of load order.
	kb := b.MustLoad("Point")
	ka := a.MustLoad("Point")
	if ka.TID != kb.TID || ka.TID < 0 {
		t.Fatalf("TIDs disagree: %d vs %d", ka.TID, kb.TID)
	}

	// And a transfer over an in-memory pipe works end to end.
	p := a.MustNew(ka)
	a.SetInt(p, ka.FieldByName("x"), 7)
	var wire bytes.Buffer
	w := skyway.NewService(a).NewWriter(&wire, skyway.WithBufferSize(128))
	if err := w.WriteObject(p); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := skyway.NewReader(b, &wire).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	if b.GetInt(got, kb.FieldByName("x")) != 7 {
		t.Error("transfer corrupted")
	}
}

func TestHeterogeneousLayoutViaPublicAPI(t *testing.T) {
	cp := pointPath()
	reg := skyway.NewInProcRegistry()
	snd, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "s", Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}
	vanilla := skyway.DefaultHeapConfig()
	vanilla.Layout = skyway.Layout{Baddr: false}
	rcv, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "r", Heap: vanilla, Registry: reg.Client()})
	if err != nil {
		t.Fatal(err)
	}

	k := snd.MustLoad("Point")
	p := snd.MustNew(k)
	snd.SetInt(p, k.FieldByName("y"), 31)

	var wire bytes.Buffer
	w := skyway.NewService(snd).NewWriter(&wire, skyway.WithTargetLayout(skyway.Layout{Baddr: false}))
	if err := w.WriteObject(p); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := skyway.NewReader(rcv, &wire).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rk := rcv.MustLoad("Point")
	if rcv.GetInt(got, rk.FieldByName("y")) != 31 {
		t.Error("cross-layout transfer corrupted")
	}
}
